// Command tvasim regenerates the paper's simulation figures (§5):
//
//	tvasim -fig 8   # legacy packet floods          (Fig. 8)
//	tvasim -fig 9   # request packet floods         (Fig. 9)
//	tvasim -fig 10  # authorized floods (colluder)  (Fig. 10)
//	tvasim -fig 11  # imprecise authorization       (Fig. 11)
//	tvasim -fig all
//
// Output is whitespace-separated columns, one series per scheme, in
// the same shape as the paper's plots: completion fraction and average
// transfer time versus attacker count (Figs. 8–10), or per-transfer
// times versus start time (Fig. 11).
//
// With -metrics FILE (and/or -trace N) tvasim instead runs one
// instrumented simulation — the first scheme in -schemes at the
// largest attacker count — and writes the streaming metrics registry
// sampled every -metrics-interval of virtual time to FILE (.csv by
// extension, JSON otherwise), along with a drop-attribution summary
// and the attack-onset health transition log. The registry carries
// the same series names tvarouter serves at /metrics, so offline
// tooling reads both data planes identically; -prom FILE additionally
// writes the final Prometheus text-exposition snapshot:
//
//	tvasim -fig 8 -schemes tva -metrics out.json
//	tvasim -fig 8 -schemes tva -metrics out.csv -prom out.prom
//	tvasim -fig 8 -schemes tva -trace 20
//
// With -tracefile FILE, the instrumented run also attaches the span
// flight recorder (internal/trace) and writes the binary span dump to
// FILE for offline analysis with tvatrace:
//
//	tvasim -fig 9 -schemes tva -tracefile run.trace
//	tvatrace summary run.trace
//
// Even without -tracefile, an instrumented run with -trace-spans > 0
// keeps the recorder armed and dumps it automatically (to
// flightrec.trace) if the drop-accounting invariant fails or the
// drop-storm detector fires.
//
// With -fault, tvasim runs the recovery experiments instead of a
// figure: a bottleneck loss-rate sweep or a router restart-time sweep,
// reporting completion fraction and (for restarts) time to recover.
// Both are bit-identical across same-seed runs:
//
//	tvasim -fault loss    -loss-rates 0,0.05,0.1,0.2 -duration 30
//	tvasim -fault restart -restart-times 10,15,20 -duration 30
//
// With -fairness, tvasim sweeps the legitimate-sender count instead of
// the attacker count and reports how evenly the survivors shared the
// bottleneck — Jain's index and the best/worst goodput ratio per run
// (Fig. 11-style fairness vs. sender population, EXPERIMENTS.md):
//
//	tvasim -fairness -schemes tva,internet -users 10,20,50 -duration 30
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"tva/internal/exp"
	"tva/internal/flowstats"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

// txBatch is the -batch flag: the transmit burst width handed to every
// simulation config. Results are identical at any width (the batcher
// only collapses completion events it can prove timing-equivalent);
// widths > 1 trade event-heap churn for wall-clock speed.
var txBatch int

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8, 9, 10, 11 or all")
	schemesFlag := flag.String("schemes", "internet,siff,pushback,tva", "comma-separated schemes")
	attackersFlag := flag.String("attackers", "1,2,5,10,20,40,70,100", "attacker counts for figs 8-10")
	durationSec := flag.Float64("duration", 120, "simulated seconds per run")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS); results are identical at any worker count")
	metricsOut := flag.String("metrics", "", "run one instrumented simulation and write its metrics time series to this file (.csv or .json)")
	promOut := flag.String("prom", "", "with an instrumented run, write the final Prometheus text-exposition snapshot to this file")
	metricsIntervalMs := flag.Float64("metrics-interval", 100, "metrics/health tick interval in virtual milliseconds (with -metrics)")
	traceN := flag.Int("trace", 0, "with an instrumented run, print the last N per-packet trace events")
	traceFile := flag.String("tracefile", "", "run one instrumented simulation with the span flight recorder on and write the binary dump here (query with tvatrace)")
	traceSpans := flag.Int("trace-spans", 0, "flight-recorder capacity in spans (0 = default with -tracefile, off otherwise)")
	stormPkts := flag.Int("storm-pkts", 1000, "drop-storm threshold (bottleneck drops per 100ms window) that triggers an automatic flight-recorder dump; 0 disables")
	faultMode := flag.String("fault", "", "recovery experiment: 'loss' (bottleneck loss sweep) or 'restart' (router restart sweep)")
	fairness := flag.Bool("fairness", false, "sweep legitimate-sender counts (-users) instead of attacker counts and report per-run fairness")
	usersFlag := flag.String("users", "10,20,50,100", "legitimate-sender counts for -fairness")
	lossRatesFlag := flag.String("loss-rates", "0,0.05,0.1,0.2", "loss probabilities for -fault loss")
	restartTimesFlag := flag.String("restart-times", "10,20,30", "restart times in seconds for -fault restart")
	batch := flag.Int("batch", 1, "transmit burst width for the event-driven core (results are burst-invariant; >1 collapses per-packet events for speed)")
	flag.Parse()
	txBatch = *batch

	schemes, err := parseSchemes(*schemesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	counts, err := parseInts(*attackersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dur := tvatime.FromSeconds(*durationSec).Sub(0)

	if *faultMode != "" {
		if err := faultSweep(*faultMode, schemes, dur, *seed, *lossRatesFlag, *restartTimesFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *fairness {
		userCounts, err := parseInts(*usersFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fairnessSweep(schemes, userCounts, counts, dur, *seed, *workers)
		return
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"8", "9", "10", "11"}
	}

	if *metricsOut != "" || *promOut != "" || *traceN > 0 || *traceFile != "" || *traceSpans > 0 {
		if len(figs) != 1 {
			fmt.Fprintln(os.Stderr, "-metrics/-prom/-trace/-tracefile need a single -fig (8, 9, 10 or 11)")
			os.Exit(2)
		}
		if err := instrumentedRun(figs[0], schemes, counts, dur, *seed,
			*metricsOut, *promOut, *metricsIntervalMs, *traceN,
			*traceFile, *traceSpans, *stormPkts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	for _, f := range figs {
		switch f {
		case "8":
			sweepFigure("Figure 8: legacy traffic flood", exp.AttackLegacyFlood, schemes, counts, dur, *seed, *workers)
		case "9":
			sweepFigure("Figure 9: request packet flood", exp.AttackRequestFlood, schemes, counts, dur, *seed, *workers)
		case "10":
			sweepFigure("Figure 10: authorized traffic flood (colluder)", exp.AttackAuthorizedFlood, schemes, counts, dur, *seed, *workers)
		case "11":
			figure11(schemes, dur, *seed, *workers)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", f)
			os.Exit(2)
		}
	}
}

// figAttack maps a figure number to its attack workload.
func figAttack(fig string) (exp.Attack, error) {
	switch fig {
	case "8":
		return exp.AttackLegacyFlood, nil
	case "9":
		return exp.AttackRequestFlood, nil
	case "10":
		return exp.AttackAuthorizedFlood, nil
	case "11":
		return exp.AttackImpreciseAuth, nil
	}
	return 0, fmt.Errorf("unknown figure %q", fig)
}

// instrumentedRun executes one simulation with the metrics registry
// (and optionally the tracer) on, writes the time series, and prints
// the drop-attribution summary plus the health transition log. It
// verifies the accounting invariant: the per-reason drop counters
// must sum to the bottleneck's drop total.
func instrumentedRun(fig string, schemes []exp.Scheme, counts []int, dur tvatime.Duration, seed int64, out, promOut string, intervalMs float64, traceN int, traceFile string, traceSpans, stormPkts int) error {
	attack, err := figAttack(fig)
	if err != nil {
		return err
	}
	scheme := exp.SchemeTVA
	if len(schemes) > 0 {
		scheme = schemes[0]
	}
	attackers := 0
	for _, k := range counts {
		if k > attackers {
			attackers = k
		}
	}
	cfg := exp.Config{
		Scheme:          scheme,
		Attack:          attack,
		NumAttackers:    attackers,
		Duration:        dur,
		Seed:            seed,
		TxBatch:         txBatch,
		MetricsInterval: tvatime.Duration(intervalMs * float64(tvatime.Millisecond)),
		TraceEvents:     traceN,
	}
	if traceFile != "" && traceSpans <= 0 {
		traceSpans = trace.DefaultCapacity
	}
	if traceSpans > 0 {
		cfg.SpanCapacity = traceSpans
		cfg.DropStormPkts = stormPkts
	}
	if attack == exp.AttackImpreciseAuth {
		cfg.NumAttackers = 100
		cfg.AttackStart = 10 * tvatime.Second
	}
	res := exp.Run(cfg)
	tel := &res.Telemetry

	fmt.Printf("# instrumented run: fig %s, scheme %s, %d attackers, %.0fs\n",
		fig, scheme, cfg.NumAttackers, dur.Seconds())
	fmt.Printf("completion=%.3f avg-xfer=%.3fs utilization=%.3f goodput=%d bytes\n",
		res.CompletionFraction(), res.AvgTransferTime(), res.BottleneckUtilization, tel.GoodputBytes)
	fmt.Printf("fairness: jain=%.4f max/min=%.2f over %d users\n",
		res.FairnessJain, res.MaxMinRatio, tel.Fairness.N())
	printTopFlows(res.Flows)

	fmt.Println("bottleneck drops by reason:")
	for i := 0; i < telemetry.NumDropReasons; i++ {
		r := telemetry.DropReason(i)
		if n := tel.SchedDrops.Get(r); n > 0 {
			fmt.Printf("  %-22s %12d\n", r, n)
		}
	}
	fmt.Printf("  %-22s %12d\n", "total", tel.SchedDrops.Total())
	if d := tel.Demotions.Total(); d > 0 {
		fmt.Printf("demotions at routers: %d\n", d)
	}
	if tel.LinkDrops.Total() > 0 {
		fmt.Println("link fault losses by reason (separate from queue drops):")
		for i := 0; i < telemetry.NumDropReasons; i++ {
			r := telemetry.DropReason(i)
			if n := tel.LinkDrops.Get(r); n > 0 {
				fmt.Printf("  %-22s %12d\n", r, n)
			}
		}
	}
	fmt.Printf("host egress drops (silent loss before routers): %d\n", tel.HostEgressDrops)

	// The attack-onset health timeline. Transition lines are fully
	// deterministic (virtual-time detector over seeded traffic), so two
	// same-seed runs print byte-identical logs — metrics-smoke diffs
	// them.
	if tel.Health != nil {
		for _, tr := range tel.Health.Transitions() {
			fmt.Printf("health: %s\n", tr)
		}
		if n := tel.Health.Overflow(); n > 0 {
			fmt.Printf("health: %d further transitions dropped (log cap)\n", n)
		}
		fmt.Printf("health final state: %s\n", tel.Health.State())
	}
	fmt.Printf("queue delay p50=%.3fms p99=%.3fms  e2e p50=%.3fms p99=%.3fms\n",
		tel.QueueDelay.Quantile(0.5).Seconds()*1e3, tel.QueueDelay.Quantile(0.99).Seconds()*1e3,
		tel.Delivery.Quantile(0.5).Seconds()*1e3, tel.Delivery.Quantile(0.99).Seconds()*1e3)

	// Accounting invariant: reason-attributed counters cover every
	// bottleneck drop exactly.
	var invariantErr error
	if tel.SchedDrops.Total() != res.BottleneckDrops {
		invariantErr = fmt.Errorf("drop accounting mismatch: per-reason sum %d != bottleneck drops %d",
			tel.SchedDrops.Total(), res.BottleneckDrops)
	} else {
		fmt.Printf("drop accounting: per-reason sum matches bottleneck total (%d)\n", res.BottleneckDrops)
	}

	// Flight-recorder dump: always when -tracefile was given; otherwise
	// automatically when the accounting invariant failed or the
	// drop-storm detector fired mid-run.
	if tel.Spans != nil {
		if tel.DropStorm {
			fmt.Printf("drop storm: threshold crossed at t=%.3fs\n", tel.DropStormAt.SecondsF())
		}
		dumpTo := traceFile
		if dumpTo == "" && (invariantErr != nil || tel.DropStorm) {
			dumpTo = "flightrec.trace"
			fmt.Printf("flight recorder: auto-dumping to %s\n", dumpTo)
		}
		if dumpTo != "" {
			if err := writeTraceDump(dumpTo, tel.Spans); err != nil {
				return err
			}
			fmt.Printf("wrote %d spans (%d recorded, %d overwritten, last trace id %d) to %s\n",
				tel.Spans.Recorded()-tel.Spans.Overwritten(), tel.Spans.Recorded(),
				tel.Spans.Overwritten(), tel.Spans.LastID(), dumpTo)
		}
	}
	if invariantErr != nil {
		return invariantErr
	}

	if out != "" && tel.Metrics != nil {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(out, ".csv") {
			err = tel.Metrics.WriteCSV(f)
		} else {
			err = tel.Metrics.WriteJSON(f)
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d rows x %d series to %s\n", tel.Metrics.Len(), tel.Metrics.NumSeries(), out)
	}
	if promOut != "" && tel.Metrics != nil {
		f, err := os.Create(promOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tel.Metrics.WritePrometheus(f); err != nil {
			return err
		}
		fmt.Printf("wrote final exposition snapshot to %s\n", promOut)
	}
	if traceN > 0 && tel.Trace != nil {
		fmt.Printf("last %d of %d trace events:\n", tel.Trace.Len(), tel.Trace.Total())
		tel.Trace.WriteText(os.Stdout)
	}
	return nil
}

// printTopFlows prints the bottleneck's heavy-hitter table, largest
// first. The samples arrive sorted from Run (bytes descending, key
// ascending), so two same-seed runs print byte-identical tables.
func printTopFlows(flows []flowstats.Sample) {
	if len(flows) == 0 {
		return
	}
	shown := flows
	if len(shown) > 10 {
		shown = shown[:10]
	}
	fmt.Printf("top %d of %d tracked senders at the bottleneck:\n", len(shown), len(flows))
	fmt.Printf("  %-20s %14s %10s %10s %10s %10s\n",
		"sender", "bytes", "±err", "pkts", "drops", "demoted")
	for _, s := range shown {
		name := s.Key.Src().String()
		if p := s.Key.Path(); p != 0 {
			// Request traffic is held accountable by path identifier,
			// not its (spoofable) source address.
			name = fmt.Sprintf("path:%d", p)
		}
		fmt.Printf("  %-20s %14d %10d %10d %10d %10d\n",
			name, s.Bytes, s.Err, s.Pkts, s.Drops, s.Demotions)
	}
}

// writeTraceDump writes the flight recorder's retained spans to path.
func writeTraceDump(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteDump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// topDrops formats the largest reason-attributed drop counters as one
// line, largest first (ties broken by reason order).
func topDrops(c *telemetry.DropCounters) string {
	type rc struct {
		r telemetry.DropReason
		n uint64
	}
	var rows []rc
	for i := 0; i < telemetry.NumDropReasons; i++ {
		r := telemetry.DropReason(i)
		if n := c.Get(r); n > 0 {
			rows = append(rows, rc{r, n})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].r < rows[j].r
	})
	if len(rows) == 0 {
		return "top-drops: none"
	}
	if len(rows) > 3 {
		rows = rows[:3]
	}
	s := "top-drops:"
	for _, row := range rows {
		s += fmt.Sprintf(" %s=%d", row.r, row.n)
	}
	return s
}

// faultSweep runs the recovery experiments: per scheme, either a
// bottleneck loss-rate sweep or a router restart-time sweep.
func faultSweep(mode string, schemes []exp.Scheme, dur tvatime.Duration, seed int64, lossRates, restartTimes string) error {
	switch mode {
	case "loss":
		rates, err := parseFloats(lossRates)
		if err != nil {
			return err
		}
		fmt.Printf("# fault: bottleneck loss sweep (no attack, %.0fs, seed %d)\n", dur.Seconds(), seed)
		fmt.Printf("%-10s %10s %12s %14s %12s\n",
			"scheme", "loss", "completion", "xfer-time(s)", "link-drops")
		for _, scheme := range schemes {
			base := exp.Config{Scheme: scheme, Duration: dur, Seed: seed, TxBatch: txBatch}
			for _, p := range exp.LossSweep(base, rates) {
				fmt.Printf("%-10s %10.3f %12.3f %14.3f %12d\n",
					scheme, p.LossRate, p.CompletionFraction, p.AvgTransferTime, p.LinkDrops)
			}
			fmt.Println()
		}
	case "restart":
		times, err := parseFloats(restartTimes)
		if err != nil {
			return err
		}
		fmt.Printf("# fault: router restart sweep (no attack, %.0fs, seed %d)\n", dur.Seconds(), seed)
		fmt.Printf("%-10s %12s %12s %16s %12s\n",
			"scheme", "restart(s)", "completion", "recover-in(s)", "flushed")
		for _, scheme := range schemes {
			base := exp.Config{Scheme: scheme, Duration: dur, Seed: seed, TxBatch: txBatch}
			for _, p := range exp.RestartSweep(base, times) {
				rec := "never"
				if p.TimeToRecoverSec >= 0 {
					rec = fmt.Sprintf("%.3f", p.TimeToRecoverSec)
				}
				fmt.Printf("%-10s %12.1f %12.3f %16s %12d\n",
					scheme, p.RestartAtSec, p.CompletionFraction, rec, p.FlushedPkts)
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown -fault mode %q (want loss or restart)", mode)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseSchemes(s string) ([]exp.Scheme, error) {
	var out []exp.Scheme
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "internet":
			out = append(out, exp.SchemeInternet)
		case "tva":
			out = append(out, exp.SchemeTVA)
		case "siff":
			out = append(out, exp.SchemeSIFF)
		case "pushback":
			out = append(out, exp.SchemePushback)
		case "":
		default:
			return nil, fmt.Errorf("unknown scheme %q", name)
		}
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad attacker count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// resultCols is the one shared per-run column schema: every sweep
// table (the figure sweeps and -fairness) draws its header and row
// cells from this list, so a new column lands in every table at once
// instead of drifting between hand-maintained Printf strings.
type resultCol struct {
	head string
	wid  int
	cell func(*exp.Result) string
}

var resultCols = []resultCol{
	{"completion", 12, func(r *exp.Result) string { return fmt.Sprintf("%.3f", r.CompletionFraction()) }},
	{"xfer-time(s)", 14, func(r *exp.Result) string { return fmt.Sprintf("%.3f", r.AvgTransferTime()) }},
	{"jain", 8, func(r *exp.Result) string { return fmt.Sprintf("%.4f", r.FairnessJain) }},
	{"max/min", 10, func(r *exp.Result) string { return fmt.Sprintf("%.2f", r.MaxMinRatio) }},
	{"drops", 12, func(r *exp.Result) string { return strconv.FormatUint(r.BottleneckDrops, 10) }},
	{"host-drops", 12, func(r *exp.Result) string { return strconv.FormatUint(r.Telemetry.HostEgressDrops, 10) }},
}

// printResultHeader prints the x-axis column header followed by the
// shared schema's headers.
func printResultHeader(xHead string) {
	fmt.Printf("%-10s %10s", "scheme", xHead)
	for _, c := range resultCols {
		fmt.Printf(" %*s", c.wid, c.head)
	}
	fmt.Println()
}

// printResultRow prints one run under printResultHeader's layout.
func printResultRow(scheme exp.Scheme, x int, res *exp.Result) {
	fmt.Printf("%-10s %10d", scheme, x)
	for _, c := range resultCols {
		fmt.Printf(" %*s", c.wid, c.cell(res))
	}
	fmt.Println()
}

func sweepFigure(title string, attack exp.Attack, schemes []exp.Scheme, counts []int, dur tvatime.Duration, seed int64, workers int) {
	cfgs := make([]exp.Config, 0, len(schemes)*len(counts))
	for _, scheme := range schemes {
		for _, k := range counts {
			cfgs = append(cfgs, exp.Config{
				Scheme:       scheme,
				Attack:       attack,
				NumAttackers: k,
				Duration:     dur,
				Seed:         seed,
				TxBatch:      txBatch,
			})
		}
	}
	results := exp.RunMany(cfgs, workers)

	fmt.Printf("# %s\n", title)
	printResultHeader("attackers")
	i := 0
	for _, scheme := range schemes {
		for _, k := range counts {
			printResultRow(scheme, k, results[i])
			i++
		}
		fmt.Println()
	}

	// One-line drop attribution across the whole sweep, so the default
	// figure output already says *why* packets died at the bottleneck.
	var agg telemetry.DropCounters
	for _, res := range results {
		agg.Merge(&res.Telemetry.SchedDrops)
	}
	fmt.Println(topDrops(&agg))
}

// fairnessSweep varies the legitimate-sender population under a fixed
// legacy flood (the largest -attackers count) and reports the shared
// schema's columns per point — the jain/max-min pair is the payload
// (fairness vs. sender count, EXPERIMENTS.md).
func fairnessSweep(schemes []exp.Scheme, userCounts, attackerCounts []int, dur tvatime.Duration, seed int64, workers int) {
	attackers := 0
	for _, k := range attackerCounts {
		if k > attackers {
			attackers = k
		}
	}
	cfgs := make([]exp.Config, 0, len(schemes)*len(userCounts))
	for _, scheme := range schemes {
		for _, n := range userCounts {
			cfgs = append(cfgs, exp.Config{
				Scheme:       scheme,
				Attack:       exp.AttackLegacyFlood,
				NumUsers:     n,
				NumAttackers: attackers,
				Duration:     dur,
				Seed:         seed,
				TxBatch:      txBatch,
			})
		}
	}
	results := exp.RunMany(cfgs, workers)

	fmt.Printf("# fairness vs. sender count: legacy flood, %d attackers, %.0fs, seed %d\n",
		attackers, dur.Seconds(), seed)
	printResultHeader("users")
	i := 0
	for _, scheme := range schemes {
		for _, n := range userCounts {
			printResultRow(scheme, n, results[i])
			i++
		}
		fmt.Println()
	}
}

// figure11 prints per-2s-bucket maxima of transfer time for the
// high-intensity (all at once) and low-intensity (10 at a time)
// imprecise-authorization attacks, for TVA and SIFF (the schemes in
// the paper's Fig. 11).
func figure11(schemes []exp.Scheme, dur tvatime.Duration, seed int64, workers int) {
	fmt.Println("# Figure 11: imprecise authorization (100 attackers granted 32KB/10s once; attack at t=10s)")
	groupings := []int{1, 10}
	var cfgs []exp.Config
	var plotted []exp.Scheme
	for _, scheme := range schemes {
		if scheme != exp.SchemeTVA && scheme != exp.SchemeSIFF {
			continue
		}
		plotted = append(plotted, scheme)
		for _, groups := range groupings {
			cfgs = append(cfgs, exp.Config{
				Scheme:       scheme,
				Attack:       exp.AttackImpreciseAuth,
				NumAttackers: 100,
				AttackGroups: groups,
				AttackStart:  10 * tvatime.Second,
				Duration:     dur,
				Seed:         seed,
				TxBatch:      txBatch,
			})
		}
	}
	results := exp.RunMany(cfgs, workers)
	i := 0
	for _, scheme := range plotted {
		for _, groups := range groupings {
			label := "all-at-once"
			if groups > 1 {
				label = "10-at-a-time"
			}
			res := results[i]
			i++
			fmt.Printf("%-6s %-13s completion=%.3f avg=%.3fs\n",
				scheme, label, res.CompletionFraction(), res.AvgTransferTime())
			starts, durs := res.Series()
			fmt.Printf("  %8s %12s\n", "t(s)", "max-xfer(s)")
			for lo := 0.0; lo < dur.Seconds(); lo += 2 {
				maxDur := 0.0
				for i, st := range starts {
					if st >= lo && st < lo+2 && durs[i] > maxDur {
						maxDur = durs[i]
					}
				}
				fmt.Printf("  %8.0f %12.2f\n", lo, maxDur)
			}
			fmt.Println()
		}
	}
}
