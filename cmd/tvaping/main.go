// Command tvaping is a capability-protected ping over the userspace
// overlay: it sends datagrams to a destination through a tvarouter,
// bootstrapping and renewing TVA capabilities transparently, and
// reports round-trip times and the shim's authorization state.
//
// Echo server:
//
//	tvaping -addr 10.0.0.2 -listen 127.0.0.1:7002 -gw 127.0.0.1:7000 -serve
//
// Client:
//
//	tvaping -addr 10.0.0.1 -listen 127.0.0.1:7001 -gw 127.0.0.1:7000 \
//	    -dst 10.0.0.2 -count 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/overlay"
	"tva/internal/packet"
)

func main() {
	addrStr := flag.String("addr", "10.0.0.1", "this host's TVA address")
	listen := flag.String("listen", "127.0.0.1:0", "UDP address to bind")
	gw := flag.String("gw", "127.0.0.1:7000", "gateway router's UDP address")
	dstStr := flag.String("dst", "", "destination TVA address (client mode)")
	count := flag.Int("count", 5, "pings to send")
	interval := flag.Duration("interval", 500*time.Millisecond, "ping interval")
	serve := flag.Bool("serve", false, "run as echo server")
	fast := flag.Bool("fast-hash", false, "use the fast (non-crypto) hash suite")
	flag.Parse()

	addr, err := parseAddr(*addrStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	suite := capability.Crypto
	if *fast {
		suite = capability.Fast
	}

	var policy core.Policy
	if *serve {
		policy = core.NewServerPolicy()
	} else {
		policy = core.NewClientPolicy()
	}
	h, err := overlay.NewHost(overlay.HostConfig{
		Addr:    addr,
		Listen:  *listen,
		Gateway: *gw,
		Policy:  policy,
		Shim:    core.ShimConfig{Suite: suite, AutoReturn: true, CollectHops: true},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer h.Close()
	fmt.Printf("tvaping %s on %s via %s\n", addr, h.UDPAddr(), *gw)

	if *serve {
		for msg := range h.Inbox {
			// Echo the payload back; the reply direction bootstraps
			// its own capabilities.
			if err := h.Send(msg.Src, msg.Payload); err != nil {
				fmt.Fprintln(os.Stderr, "echo:", err)
			}
		}
		return
	}

	dst, err := parseAddr(*dstStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "client mode needs -dst:", err)
		os.Exit(2)
	}
	for i := 0; i < *count; i++ {
		payload := []byte(fmt.Sprintf("ping %d %d", i, time.Now().UnixNano()))
		start := time.Now()
		if err := h.Send(dst, payload); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		select {
		case msg := <-h.Inbox:
			state := "capability"
			if !h.HasCaps(dst) {
				state = "request"
			}
			detail := ""
			if msg.Demoted {
				if d, ok := h.LastDemotion(dst); ok {
					detail = fmt.Sprintf(" (%s at router %d)", d.Reason, d.Router)
				}
			}
			rtt := time.Since(start).Round(time.Microsecond)
			fmt.Printf("reply from %s: seq=%d rtt=%v mode=%s demoted=%v%s%s\n",
				msg.Src, i, rtt, state, msg.Demoted, detail, hopBreakdown(h.HopReport(dst), rtt))
		case <-time.After(2 * time.Second):
			// A demotion notice carried back on the reverse channel
			// tells us which router stopped honouring the path and why;
			// the last hop report shows where the queue wait was before
			// the path went dark.
			hops := hopBreakdown(h.HopReport(dst), 0)
			if d, ok := h.LastDemotion(dst); ok {
				fmt.Printf("timeout seq=%d (path demoted: %s at router %d)%s\n", i, d.Reason, d.Router, hops)
			} else {
				fmt.Printf("timeout seq=%d%s\n", i, hops)
			}
		}
		time.Sleep(*interval)
	}
	st := h.Stats()
	fmt.Printf("shim: requests=%d grants=%d regular=%d nonce-only=%d renewals=%d\n",
		st.RequestsSent, st.GrantsReceived, st.RegularSent, st.NonceOnlySent, st.RenewalsSent)
}

// hopBreakdown renders the per-hop queue-wait report that capability
// routers stamp into requests (CollectHops): which router the path
// crosses and how long packets currently wait in its output queue. The
// remainder of the RTT, when known, is propagation plus endpoint time.
func hopBreakdown(hops []packet.HopStamp, rtt time.Duration) string {
	if len(hops) == 0 {
		return ""
	}
	var queued time.Duration
	s := " path=["
	for i, st := range hops {
		if i > 0 {
			s += " "
		}
		w := time.Duration(st.WaitUs) * time.Microsecond
		queued += w
		s += fmt.Sprintf("router%d:%v", st.Router, w)
	}
	s += "]"
	if rtt > 0 {
		s += fmt.Sprintf(" queued=%v other=%v", queued, (rtt - queued).Round(time.Microsecond))
	}
	return s
}

func parseAddr(s string) (packet.Addr, error) {
	var a, b, c, d byte
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad TVA address %q (want dotted quad)", s)
	}
	return packet.AddrFrom(a, b, c, d), nil
}
