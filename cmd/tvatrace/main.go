// Command tvatrace queries packet-lifecycle trace dumps written by the
// flight recorder (tvasim -tracefile, or trace.WriteDump):
//
//	tvatrace summary dump.trace            # edges, outcomes, drop mix
//	tvatrace waterfall dump.trace 42       # text waterfall of trace 42
//	tvatrace slowest -n 10 dump.trace      # slowest deliveries + bottleneck hop
//	tvatrace hops -dst 192.168.0.1 dump.trace  # per-hop wait/service breakdown
//	tvatrace drops dump.trace              # drop census by reason and hop
//	tvatrace drops -id 42 dump.trace       # why trace 42 died + queue sharers
//	tvatrace chrome dump.trace > t.json    # Chrome Trace Event JSON (Perfetto)
//
// Output is deterministic for a given dump: every listing has a fixed
// sort order and durations print with Go's duration formatting.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"tva/internal/packet"
	"tva/internal/telemetry"
	"tva/internal/trace"
	"tva/internal/tvatime"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: tvatrace <command> [flags] <dumpfile> [args]

commands:
  summary    <dump>         span/chain/outcome/drop overview
  waterfall  <dump> <id>    text waterfall for one trace ID
  slowest    [-n N] <dump>  top-N slowest delivered packets
  hops       [-src A] [-dst A] <dump>  per-hop wait/service aggregates
  drops      [-id N] [-sharers N] <dump>  drop census or single-drop forensics
  chrome     [-o FILE] <dump>  export Chrome Trace Event JSON (Perfetto)
`)
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tvatrace: "+format+"\n", args...)
	os.Exit(1)
}

func loadDump(path string) *trace.Dump {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	d, err := trace.ReadDump(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return d
}

func addr(raw uint32) string { return packet.Addr(raw).String() }

// parseAddr accepts a dotted quad.
func parseAddr(s string) uint32 {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		fatalf("bad address %q (want a.b.c.d)", s)
	}
	var b [4]byte
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			fatalf("bad address %q: %v", s, err)
		}
		b[i] = byte(v)
	}
	return uint32(packet.AddrFrom(b[0], b[1], b[2], b[3]))
}

func dur(d tvatime.Duration) string {
	if d < 0 {
		return "-"
	}
	return d.String()
}

func at(t tvatime.Time) string {
	if t == trace.NoTime {
		return "-"
	}
	return tvatime.Duration(t).String()
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "summary":
		if len(args) != 1 {
			usage()
		}
		cmdSummary(loadDump(args[0]))
	case "waterfall":
		if len(args) != 2 {
			usage()
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fatalf("bad trace id %q", args[1])
		}
		cmdWaterfall(loadDump(args[0]), id)
	case "slowest":
		fs := flag.NewFlagSet("slowest", flag.ExitOnError)
		n := fs.Int("n", 10, "how many to show")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		cmdSlowest(loadDump(fs.Arg(0)), *n)
	case "hops":
		fs := flag.NewFlagSet("hops", flag.ExitOnError)
		src := fs.String("src", "", "filter to this source address")
		dst := fs.String("dst", "", "filter to this destination address")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		var s, d uint32
		if *src != "" {
			s = parseAddr(*src)
		}
		if *dst != "" {
			d = parseAddr(*dst)
		}
		cmdHops(loadDump(fs.Arg(0)), s, d)
	case "drops":
		fs := flag.NewFlagSet("drops", flag.ExitOnError)
		id := fs.Uint64("id", 0, "forensics for this trace ID")
		sharers := fs.Int("sharers", 16, "max queue sharers to list")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		cmdDrops(loadDump(fs.Arg(0)), *id, *sharers)
	case "chrome":
		fs := flag.NewFlagSet("chrome", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		fs.Parse(args)
		if fs.NArg() != 1 {
			usage()
		}
		cmdChrome(loadDump(fs.Arg(0)), *out)
	default:
		usage()
	}
}

func cmdSummary(d *trace.Dump) {
	var edges [trace.NumEdges]int
	var t0, t1 tvatime.Time
	for i, sp := range d.Spans {
		edges[sp.Edge]++
		if i == 0 || sp.Time < t0 {
			t0 = sp.Time
		}
		if sp.Time > t1 {
			t1 = sp.Time
		}
	}
	stats := trace.AnalyzeAll(d.Spans)
	var outcomes [3]int
	for i := range stats {
		outcomes[stats[i].Outcome]++
	}
	fmt.Printf("spans:   %d across %d hops, virtual time %s .. %s\n",
		len(d.Spans), len(d.Hops), at(t0), at(t1))
	fmt.Printf("packets: %d traced: %d delivered, %d dropped, %d in-flight\n",
		len(stats), outcomes[trace.ChainDelivered], outcomes[trace.ChainDropped],
		outcomes[trace.ChainInFlight])
	fmt.Printf("edges:  ")
	for e := 0; e < trace.NumEdges; e++ {
		fmt.Printf(" %s=%d", trace.Edge(e), edges[e])
	}
	fmt.Println()
	printDropCensus(d, stats, 0)
}

// dropKey groups drops for the census.
type dropKey struct {
	reason telemetry.DropReason
	hop    uint16
}

func printDropCensus(d *trace.Dump, stats []trace.ChainStats, limit int) {
	census := map[dropKey]int{}
	for i := range stats {
		st := &stats[i]
		if st.Outcome == trace.ChainDropped {
			census[dropKey{st.DropReason, st.DropHop}]++
		}
	}
	if len(census) == 0 {
		fmt.Println("drops:   none recorded")
		return
	}
	type row struct {
		k dropKey
		n int
	}
	rows := make([]row, 0, len(census))
	for k, n := range census {
		rows = append(rows, row{k, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		if rows[i].k.reason != rows[j].k.reason {
			return rows[i].k.reason < rows[j].k.reason
		}
		return rows[i].k.hop < rows[j].k.hop
	})
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	fmt.Println("drops by reason and hop:")
	for _, r := range rows {
		fmt.Printf("  %6d  %-18s %s\n", r.n, r.k.reason, d.HopName(r.k.hop))
	}
}

func cmdWaterfall(d *trace.Dump, id uint64) {
	var spans []trace.Span
	for _, sp := range d.Spans {
		if sp.ID == id {
			spans = append(spans, sp)
		}
	}
	if len(spans) == 0 {
		fatalf("trace id %d: no spans in dump (never traced, or evicted by ring wraparound)", id)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
	st := trace.Analyze(trace.Chain{ID: id, Spans: spans})

	head := fmt.Sprintf("trace %d: %s -> %s, %d B, %s", id, addr(st.Src), addr(st.Dst), st.Size, st.Outcome)
	if tot := st.Total(); tot >= 0 {
		head += " in " + dur(tot)
	}
	fmt.Println(head)

	base := spans[0].Time
	for _, sp := range spans {
		note := ""
		switch sp.Edge {
		case trace.EdgeSend:
			note = trace.KindName(sp.Kind)
		case trace.EdgeVerdict:
			note = "class=" + trace.ClassName(sp.Class) + " router=" + strconv.Itoa(int(sp.Router))
		case trace.EdgeDemote:
			note = "reason=" + sp.Reason.String() + " router=" + strconv.Itoa(int(sp.Router))
		case trace.EdgeEnqueue:
			note = "class=" + trace.ClassName(sp.Class)
			if trace.ClassName(sp.Class) == "request" {
				note += " path=" + strconv.Itoa(int(sp.PathID))
			}
		case trace.EdgeDrop:
			note = "reason=" + sp.Reason.String()
		}
		fmt.Printf("  t+%-12s %-8s %-22s %s\n",
			tvatime.Duration(sp.Time-base).String(), sp.Edge, d.HopName(sp.Hop), note)
	}

	// Per-hop attribution footer.
	for _, v := range st.Visits {
		fmt.Printf("  hop %-22s wait=%-10s service=%s\n",
			d.HopName(v.Hop), dur(v.Wait()), dur(v.Service()))
	}
}

func cmdSlowest(d *trace.Dump, n int) {
	stats := trace.AnalyzeAll(d.Spans)
	var done []trace.ChainStats
	for i := range stats {
		if stats[i].Outcome == trace.ChainDelivered && stats[i].Total() >= 0 {
			done = append(done, stats[i])
		}
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].Total() != done[j].Total() {
			return done[i].Total() > done[j].Total()
		}
		return done[i].ID < done[j].ID
	})
	if n > 0 && len(done) > n {
		done = done[:n]
	}
	fmt.Printf("%-8s %-24s %-12s %-12s %s\n", "id", "flow", "total", "queued", "bottleneck hop")
	for i := range done {
		st := &done[i]
		hop, wait := st.Bottleneck()
		bn := "-"
		if hop != trace.NoHop || wait > 0 {
			bn = fmt.Sprintf("%s (%s)", d.HopName(hop), dur(wait))
		}
		fmt.Printf("%-8d %-24s %-12s %-12s %s\n", st.ID,
			addr(st.Src)+"->"+addr(st.Dst), dur(st.Total()), dur(st.QueueWait()), bn)
	}
}

func cmdHops(d *trace.Dump, src, dst uint32) {
	stats := trace.AnalyzeAll(d.Spans)
	aggs := trace.AggregateHops(stats, src, dst)
	if len(aggs) == 0 {
		fmt.Println("no completed hop visits match")
		return
	}
	fmt.Printf("%-24s %-8s %-12s %-12s %-12s %s\n",
		"hop", "visits", "mean-wait", "max-wait", "mean-svc", "max-svc")
	for _, a := range aggs {
		fmt.Printf("%-24s %-8d %-12s %-12s %-12s %s\n", d.HopName(a.Hop), a.Visits,
			dur(a.MeanWait()), dur(a.WaitMax), dur(a.MeanService()), dur(a.ServiceMax))
	}
}

func cmdDrops(d *trace.Dump, id uint64, maxSharers int) {
	stats := trace.AnalyzeAll(d.Spans)
	if id == 0 {
		printDropCensus(d, stats, 0)
		return
	}
	var st *trace.ChainStats
	for i := range stats {
		if stats[i].ID == id {
			st = &stats[i]
			break
		}
	}
	if st == nil {
		fatalf("trace id %d: no spans in dump", id)
	}
	if st.Outcome != trace.ChainDropped {
		fatalf("trace id %d is %s, not dropped (see 'waterfall')", id, st.Outcome)
	}
	fmt.Printf("trace %d: %s -> %s, %d B, dropped at t=%s\n",
		id, addr(st.Src), addr(st.Dst), st.Size, at(st.DropTime))
	fmt.Printf("  reason: %s\n  hop:    %s\n", st.DropReason, d.HopName(st.DropHop))
	if len(st.DemotedBy) > 0 {
		fmt.Printf("  demoted by routers: %v\n", st.DemotedBy)
	}

	sharers := trace.QueueSharers(d.Spans, st.DropHop, st.DropTime, id)
	fmt.Printf("  queue sharers at drop time: %d\n", len(sharers))
	byID := map[uint64]*trace.ChainStats{}
	for i := range stats {
		byID[stats[i].ID] = &stats[i]
	}
	shown := sharers
	if maxSharers > 0 && len(shown) > maxSharers {
		shown = shown[:maxSharers]
	}
	for _, sid := range shown {
		o := byID[sid]
		if o == nil {
			continue
		}
		fmt.Printf("    id=%-7d %s -> %s  %s  %d B  %s\n", sid,
			addr(o.Src), addr(o.Dst), trace.ClassName(o.Class), o.Size, o.Outcome)
	}
	if len(shown) < len(sharers) {
		fmt.Printf("    ... %d more\n", len(sharers)-len(shown))
	}
}

func cmdChrome(d *trace.Dump, out string) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteChromeTrace(w, d); err != nil {
		fatalf("writing chrome trace: %v", err)
	}
}
