// Command tvabench regenerates the paper's implementation
// measurements (§6) against this repository's userspace router:
//
//	tvabench -table 1   # per-packet-type processing time  (Table 1)
//	tvabench -fig 12    # peak output rate vs input rate    (Fig. 12)
//	tvabench -all
//
// Absolute numbers differ from the paper's 3.2 GHz Xeon kernel module;
// the orderings (regular-with-entry cheapest, renewal-without-entry
// most expensive, throughput plateaus per type) are the reproduced
// result. Use -suite crypto for the paper's AES+SHA1 construction.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"tva/internal/capability"
	"tva/internal/overlay"
	"tva/internal/tvatime"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1)")
	fig := flag.Int("fig", 0, "figure to regenerate (12)")
	all := flag.Bool("all", false, "regenerate Table 1 and Fig. 12")
	suiteName := flag.String("suite", "crypto", "hash suite: crypto (AES+SHA1, as the paper) or fast")
	dur := flag.Duration("dur", 300*time.Millisecond, "measurement window per Fig. 12 point")
	flag.Parse()

	var suite capability.Suite
	switch *suiteName {
	case "crypto":
		suite = capability.Crypto
	case "fast":
		suite = capability.Fast
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suiteName)
		os.Exit(2)
	}

	if *all || *table == 1 {
		table1(suite)
	}
	if *all || *fig == 12 {
		fig12(suite, *dur)
	}
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
}

// table1 measures the per-packet processing cost of each packet type
// through the full forwarding path (Table 1's rows). Paper values on
// a 3.2 GHz Xeon, for comparison: request 460 ns, regular w/ entry
// 33 ns, regular w/o entry 1486 ns, renewal w/ entry 439 ns, renewal
// w/o entry 1821 ns.
func table1(suite capability.Suite) {
	fmt.Printf("# Table 1: processing overhead of different types of packets (suite=%s)\n", suite.Name)
	fmt.Printf("%-22s %14s\n", "packet type", "ns/packet")
	for _, kind := range overlay.Kinds {
		w := overlay.NewWorkload(kind, suite)
		res := testing.Benchmark(func(b *testing.B) {
			now := tvatime.WallClock{}.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.ForwardOne(now)
			}
		})
		fmt.Printf("%-22s %14d\n", kind, res.NsPerOp())
	}
	fmt.Println()
}

// fig12 measures output rate versus offered input rate per packet
// type (Fig. 12's series).
func fig12(suite capability.Suite, dur time.Duration) {
	fmt.Printf("# Figure 12: peak output rate vs input rate (suite=%s, %v per point)\n", suite.Name, dur)
	rates := []int{100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000}
	fmt.Printf("%-22s", "packet type")
	for _, r := range rates {
		fmt.Printf(" %9s", fmt.Sprintf("%dk", r/1000))
	}
	fmt.Println(" (input pps -> output kpps)")
	for _, kind := range overlay.Kinds {
		w := overlay.NewWorkload(kind, suite)
		fmt.Printf("%-22s", kind)
		for _, rate := range rates {
			out := overlay.MeasureForwarding(w, rate, dur)
			fmt.Printf(" %9.0f", out/1000)
		}
		fmt.Println()
	}
	fmt.Println()
}
