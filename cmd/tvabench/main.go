// Command tvabench regenerates the paper's implementation
// measurements (§6) against this repository's userspace router:
//
//	tvabench -table 1   # per-packet-type processing time  (Table 1)
//	tvabench -fig 12    # peak output rate vs input rate    (Fig. 12)
//	tvabench -all
//	tvabench -all -label abc123   # also write BENCH_abc123.json
//
// Absolute numbers differ from the paper's 3.2 GHz Xeon kernel module;
// the orderings (regular-with-entry cheapest, renewal-without-entry
// most expensive, throughput plateaus per type) are the reproduced
// result. Use -suite crypto for the paper's AES+SHA1 construction.
//
// With -label (or -json), a machine-readable BENCH_<label>.json
// snapshot is written containing Table 1 ns/op and allocs/op, Fig. 12
// peak kpps per packet type, and scenario completion fractions from a
// parallel simulation sweep — the regression record the Makefile's
// bench target commits per git revision.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tva/internal/capability"
	"tva/internal/exp"
	"tva/internal/overlay"
	"tva/internal/tvatime"
)

// benchSnapshot is the BENCH_<label>.json schema.
type benchSnapshot struct {
	Label      string          `json:"label"`
	Suite      string          `json:"suite"`
	GoVersion  string          `json:"go_version"`
	Table1     []table1Row     `json:"table1"`
	Fig12      []fig12Row      `json:"fig12"`
	Fig12Batch []fig12BatchRow `json:"fig12_batch,omitempty"`
	Scenarios  []scenarioRow   `json:"scenarios"`
}

type table1Row struct {
	Kind        string  `json:"kind"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type fig12Row struct {
	Kind       string  `json:"kind"`
	InputPPS   int     `json:"input_pps"`
	OutputKpps float64 `json:"output_kpps"`
}

// fig12BatchRow is one point of the batched data path series: the
// sustained forwarding rate of a full overlay router at a given
// RouterConfig.Batch, driven over loopback UDP (batch 1 is the legacy
// per-datagram path).
type fig12BatchRow struct {
	Kind       string  `json:"kind"`
	Batch      int     `json:"batch"`
	OutputKpps float64 `json:"output_kpps"`
}

type scenarioRow struct {
	Scheme     string  `json:"scheme"`
	Attack     string  `json:"attack"`
	Attackers  int     `json:"attackers"`
	Completion float64 `json:"completion_fraction"`
	AvgXferSec float64 `json:"avg_transfer_sec"`
}

func main() {
	table := flag.Int("table", 0, "table to regenerate (1)")
	fig := flag.Int("fig", 0, "figure to regenerate (12)")
	all := flag.Bool("all", false, "regenerate Table 1 and Fig. 12")
	suiteName := flag.String("suite", "crypto", "hash suite: crypto (AES+SHA1, as the paper) or fast")
	dur := flag.Duration("dur", 300*time.Millisecond, "measurement window per Fig. 12 point")
	label := flag.String("label", "", "write a BENCH_<label>.json snapshot (implies -all)")
	jsonPath := flag.String("json", "", "snapshot output path (default BENCH_<label>.json)")
	workers := flag.Int("workers", 0, "parallel workers for the snapshot's scenario sweep (0 = GOMAXPROCS)")
	simSec := flag.Float64("sim-duration", 12, "simulated seconds per snapshot scenario run")
	guard := flag.String("guard", "", "compare current Table 1 allocs/op against this BENCH_*.json; exit 1 on regression")
	guardBatchFlag := flag.Bool("guard-batch", false, "measure the batched data path and require >=2x throughput at batch=32 vs batch=1; exit 1 otherwise")
	flag.Parse()

	var suite capability.Suite
	switch *suiteName {
	case "crypto":
		suite = capability.Crypto
	case "fast":
		suite = capability.Fast
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suiteName)
		os.Exit(2)
	}

	if *guard != "" {
		if err := guardAllocs(suite, *guard); err != nil {
			fmt.Fprintln(os.Stderr, "tvabench -guard:", err)
			os.Exit(1)
		}
		return
	}

	if *guardBatchFlag {
		if err := guardBatch(suite, *dur); err != nil {
			fmt.Fprintln(os.Stderr, "tvabench -guard-batch:", err)
			os.Exit(1)
		}
		return
	}

	if *label != "" || *jsonPath != "" {
		if err := writeSnapshot(suite, *label, *jsonPath, *dur, *workers, *simSec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *all || *table == 1 {
		table1(suite)
	}
	if *all || *fig == 12 {
		fig12(suite, *dur)
		fig12Batch(suite, *dur)
	}
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
}

// measureTable1 benchmarks every packet kind through the forwarding
// path, reporting ns/op and allocation counts.
func measureTable1(suite capability.Suite) []table1Row {
	rows := make([]table1Row, 0, len(overlay.Kinds))
	for _, kind := range overlay.Kinds {
		w := overlay.NewWorkload(kind, suite)
		// Measure with the streaming-metrics harness attached, exactly
		// like bench_test.go: the alloc guard then proves the Table 1
		// rows stay at 0 allocs/op with observability enabled.
		m := overlay.NewBenchMetrics(w)
		res := testing.Benchmark(func(b *testing.B) {
			now := tvatime.WallClock{}.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.ForwardOneObserved(now, m)
				if i%overlay.BenchTickEvery == 0 {
					m.Tick()
				}
			}
		})
		rows = append(rows, table1Row{
			Kind:        kind.String(),
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return rows
}

// table1 measures the per-packet processing cost of each packet type
// through the full forwarding path (Table 1's rows). Paper values on
// a 3.2 GHz Xeon, for comparison: request 460 ns, regular w/ entry
// 33 ns, regular w/o entry 1486 ns, renewal w/ entry 439 ns, renewal
// w/o entry 1821 ns.
func table1(suite capability.Suite) {
	fmt.Printf("# Table 1: processing overhead of different types of packets (suite=%s)\n", suite.Name)
	fmt.Printf("%-22s %14s %12s\n", "packet type", "ns/packet", "allocs/pkt")
	for _, row := range measureTable1(suite) {
		fmt.Printf("%-22s %14.1f %12d\n", row.Kind, row.NsPerOp, row.AllocsPerOp)
	}
	fmt.Println()
}

// fig12 measures output rate versus offered input rate per packet
// type (Fig. 12's series).
func fig12(suite capability.Suite, dur time.Duration) {
	fmt.Printf("# Figure 12: peak output rate vs input rate (suite=%s, %v per point)\n", suite.Name, dur)
	rates := []int{100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000}
	fmt.Printf("%-22s", "packet type")
	for _, r := range rates {
		fmt.Printf(" %9s", fmt.Sprintf("%dk", r/1000))
	}
	fmt.Println(" (input pps -> output kpps)")
	for _, kind := range overlay.Kinds {
		w := overlay.NewWorkload(kind, suite)
		fmt.Printf("%-22s", kind)
		for _, rate := range rates {
			out := overlay.MeasureForwarding(w, rate, dur)
			fmt.Printf(" %9.0f", out/1000)
		}
		fmt.Println()
	}
	fmt.Println()
}

// measureFig12Batch measures the batched data path series: the
// sustained loopback forwarding rate of a full overlay router per
// batch size, best of trials runs each (a stalled window — a dropped
// datagram under load — voids a run, never the series).
func measureFig12Batch(suite capability.Suite, dur time.Duration, trials int) ([]fig12BatchRow, error) {
	kind := overlay.KindRegularWithEntry
	w := overlay.NewWorkload(kind, suite)
	rows := make([]fig12BatchRow, 0, len(overlay.BatchSizes))
	for _, bs := range overlay.BatchSizes {
		best := 0.0
		var lastErr error
		for t := 0; t < trials; t++ {
			pps, err := overlay.MeasureForwardingBatch(w, bs, dur)
			if err != nil {
				lastErr = err
				continue
			}
			if pps > best {
				best = pps
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("batch=%d: every trial stalled: %v", bs, lastErr)
		}
		rows = append(rows, fig12BatchRow{Kind: kind.String(), Batch: bs, OutputKpps: best / 1000})
	}
	return rows, nil
}

// fig12Batch prints the batched data path series.
func fig12Batch(suite capability.Suite, dur time.Duration) {
	fmt.Printf("# Figure 12 (batched): overlay forwarding rate vs RouterConfig.Batch (suite=%s, %v per point)\n", suite.Name, dur)
	rows, err := measureFig12Batch(suite, dur, 2)
	if err != nil {
		fmt.Printf("measurement failed: %v\n\n", err)
		return
	}
	fmt.Printf("%-22s %8s %12s\n", "packet type", "batch", "output kpps")
	for _, row := range rows {
		fmt.Printf("%-22s %8d %12.0f\n", row.Kind, row.Batch, row.OutputKpps)
	}
	fmt.Println()
}

// guardBatchRatio is the floor guardBatch enforces: the batched data
// path must forward at least this many times faster at batch=32 than
// the legacy per-datagram path it replaced.
const guardBatchRatio = 2.0

// guardBatch measures the production data path at batch sizes 1 and 32
// and fails unless batching still pays for itself: >=2x sustained
// throughput. This is the regression record for the batched
// forwarding work — syscall amortization (recvmmsg/sendmmsg), one
// scheduler crossing per burst, and per-burst wakeups — measured
// end to end over real sockets, best of three runs per size.
func guardBatch(suite capability.Suite, dur time.Duration) error {
	w := overlay.NewWorkload(overlay.KindRegularWithEntry, suite)
	const trials = 3
	measure := func(bs int) (float64, error) {
		best := 0.0
		var lastErr error
		for t := 0; t < trials; t++ {
			pps, err := overlay.MeasureForwardingBatch(w, bs, dur)
			if err != nil {
				lastErr = err
				continue
			}
			if pps > best {
				best = pps
			}
		}
		if best == 0 {
			return 0, fmt.Errorf("batch=%d: every trial stalled: %v", bs, lastErr)
		}
		return best, nil
	}
	single, err := measure(1)
	if err != nil {
		return err
	}
	batched, err := measure(32)
	if err != nil {
		return err
	}
	ratio := batched / single
	fmt.Printf("# batch guard (suite=%s): batch=1 %.0f kpps, batch=32 %.0f kpps, ratio %.2fx (floor %.1fx)\n",
		suite.Name, single/1000, batched/1000, ratio, guardBatchRatio)
	if ratio < guardBatchRatio {
		return fmt.Errorf("batched forwarding only %.2fx the per-datagram path (need >=%.1fx)", ratio, guardBatchRatio)
	}
	fmt.Println("batched data path within throughput floor")
	return nil
}

// guardAllocs compares current Table 1 allocation counts against a
// committed snapshot and fails on any regression. Telemetry rode into
// the forwarding path with the promise of zero extra allocations;
// this is the check that keeps the promise honest in CI.
func guardAllocs(suite capability.Suite, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	baseline := make(map[string]int64, len(base.Table1))
	for _, row := range base.Table1 {
		baseline[row.Kind] = row.AllocsPerOp
	}

	fmt.Printf("# alloc guard vs %s (suite=%s)\n", path, suite.Name)
	fmt.Printf("%-22s %10s %10s\n", "packet type", "baseline", "current")
	failed := false
	// Measure exactly the way the snapshot was measured (steady-state
	// testing.Benchmark loops), so warm-up allocations such as flow
	// cache growth do not read as regressions.
	for _, row := range measureTable1(suite) {
		got := row.AllocsPerOp
		want, ok := baseline[row.Kind]
		mark := "ok"
		if ok && got > want {
			mark = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-22s %10d %10d  %s\n", row.Kind, want, got, mark)
	}
	if failed {
		return fmt.Errorf("allocs/op regressed above the %s baseline", path)
	}
	fmt.Println("allocs/op within baseline")
	return nil
}

// snapshotSaturatingPPS is the offered load for the snapshot's Fig. 12
// point: far beyond any kind's service rate, so the measured output is
// the peak forwarding rate.
const snapshotSaturatingPPS = 8_000_000

// writeSnapshot measures everything and writes BENCH_<label>.json.
func writeSnapshot(suite capability.Suite, label, path string, dur time.Duration, workers int, simSec float64) error {
	if label == "" {
		label = "local"
	}
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", label)
	}
	snap := benchSnapshot{
		Label:     label,
		Suite:     suite.Name,
		GoVersion: runtime.Version(),
	}

	fmt.Fprintf(os.Stderr, "tvabench: Table 1 (suite=%s)...\n", suite.Name)
	snap.Table1 = measureTable1(suite)

	fmt.Fprintln(os.Stderr, "tvabench: Fig. 12 peak rates...")
	for _, kind := range overlay.Kinds {
		w := overlay.NewWorkload(kind, suite)
		out := overlay.MeasureForwarding(w, snapshotSaturatingPPS, dur)
		snap.Fig12 = append(snap.Fig12, fig12Row{
			Kind:       kind.String(),
			InputPPS:   snapshotSaturatingPPS,
			OutputKpps: out / 1000,
		})
	}

	fmt.Fprintln(os.Stderr, "tvabench: Fig. 12 batched data path...")
	batchRows, err := measureFig12Batch(suite, dur, 2)
	if err != nil {
		return fmt.Errorf("fig12_batch: %w", err)
	}
	snap.Fig12Batch = batchRows

	fmt.Fprintln(os.Stderr, "tvabench: scenario sweep...")
	simDur := tvatime.FromSeconds(simSec).Sub(0)
	spec := exp.SweepSpec{
		Base: exp.Config{Duration: simDur, Seed: 1},
		Schemes: []exp.Scheme{
			exp.SchemeInternet, exp.SchemeSIFF, exp.SchemePushback, exp.SchemeTVA,
		},
		Attacks:   []exp.Attack{exp.AttackLegacyFlood},
		Attackers: []int{100},
	}
	cfgs := spec.Expand()
	for _, res := range exp.RunMany(cfgs, workers) {
		snap.Scenarios = append(snap.Scenarios, scenarioRow{
			Scheme:     res.Cfg.Scheme.String(),
			Attack:     res.Cfg.Attack.String(),
			Attackers:  res.Cfg.NumAttackers,
			Completion: res.CompletionFraction(),
			AvgXferSec: res.AvgTransferTime(),
		})
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
