module tva

go 1.22
