// Benchmarks regenerating every table and figure in the paper's
// evaluation (run: go test -bench=. -benchmem):
//
//   - BenchmarkTable1_*: per-packet-type processing cost through the
//     full forwarding path (§6 Table 1). Compare orderings, not
//     absolute ns (different hardware and substrate).
//   - BenchmarkFig12_*: peak forwarding rate per packet type at
//     saturating offered load (§6 Fig. 12), reported as kpps.
//   - BenchmarkFig8/9/10/11_*: the simulation scenarios at compressed
//     duration, reporting completion fraction and transfer time as
//     custom metrics (full-length runs: cmd/tvasim).
//   - BenchmarkAblation_*: the design choices called out in DESIGN.md
//     §5 (hash suite, capability caching, per-destination fair
//     queuing, bounded router state).
package tva_test

import (
	"testing"
	"time"

	"tva"

	"tva/internal/capability"
	"tva/internal/flowcache"
	"tva/internal/overlay"
	"tva/internal/tvatime"
)

// --- Table 1 ---

func benchTable1(b *testing.B, kind overlay.PacketKind) {
	w := overlay.NewWorkload(kind, capability.Crypto)
	// Streaming metrics stay attached while Table 1 is measured: the
	// 0 allocs/op rows hold with observability on, not just off.
	m := overlay.NewBenchMetrics(w)
	now := tvatime.WallClock{}.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ForwardOneObserved(now, m)
		if i%overlay.BenchTickEvery == 0 {
			m.Tick()
		}
	}
}

func BenchmarkTable1_LegacyIP(b *testing.B)         { benchTable1(b, overlay.KindLegacyIP) }
func BenchmarkTable1_Request(b *testing.B)          { benchTable1(b, overlay.KindRequestPkt) }
func BenchmarkTable1_RegularWithEntry(b *testing.B) { benchTable1(b, overlay.KindRegularWithEntry) }
func BenchmarkTable1_RegularNoEntry(b *testing.B)   { benchTable1(b, overlay.KindRegularNoEntry) }
func BenchmarkTable1_RenewalWithEntry(b *testing.B) { benchTable1(b, overlay.KindRenewalWithEntry) }
func BenchmarkTable1_RenewalNoEntry(b *testing.B)   { benchTable1(b, overlay.KindRenewalNoEntry) }

// --- Fig. 12 ---

func benchFig12(b *testing.B, kind overlay.PacketKind) {
	var out float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := overlay.NewWorkload(kind, capability.Crypto)
		out = overlay.MeasureForwarding(w, 4_000_000, 150*time.Millisecond)
	}
	b.ReportMetric(out/1000, "kpps")
	b.ReportMetric(0, "ns/op")
}

func BenchmarkFig12_LegacyIP(b *testing.B)         { benchFig12(b, overlay.KindLegacyIP) }
func BenchmarkFig12_Request(b *testing.B)          { benchFig12(b, overlay.KindRequestPkt) }
func BenchmarkFig12_RegularWithEntry(b *testing.B) { benchFig12(b, overlay.KindRegularWithEntry) }
func BenchmarkFig12_RegularNoEntry(b *testing.B)   { benchFig12(b, overlay.KindRegularNoEntry) }
func BenchmarkFig12_RenewalWithEntry(b *testing.B) { benchFig12(b, overlay.KindRenewalWithEntry) }
func BenchmarkFig12_RenewalNoEntry(b *testing.B)   { benchFig12(b, overlay.KindRenewalNoEntry) }

// --- Figs. 8–11 (compressed simulations) ---

const benchSimSeconds = 12 * time.Second

func benchScenario(b *testing.B, scheme tva.Scheme, attack tva.Attack, attackers int) {
	var res *tva.SimResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res = tva.RunSim(tva.SimConfig{
			Scheme:       scheme,
			Attack:       attack,
			NumAttackers: attackers,
			Duration:     benchSimSeconds,
			Seed:         1,
		})
	}
	b.ReportMetric(res.CompletionFraction(), "completion")
	b.ReportMetric(res.AvgTransferTime(), "xfer-sec")
}

func BenchmarkFig8_LegacyFlood_TVA(b *testing.B) {
	benchScenario(b, tva.SchemeTVA, tva.AttackLegacyFlood, 100)
}

func BenchmarkFig8_LegacyFlood_Internet(b *testing.B) {
	benchScenario(b, tva.SchemeInternet, tva.AttackLegacyFlood, 100)
}

func BenchmarkFig8_LegacyFlood_SIFF(b *testing.B) {
	benchScenario(b, tva.SchemeSIFF, tva.AttackLegacyFlood, 100)
}

func BenchmarkFig8_LegacyFlood_Pushback(b *testing.B) {
	benchScenario(b, tva.SchemePushback, tva.AttackLegacyFlood, 100)
}

func BenchmarkFig9_RequestFlood_TVA(b *testing.B) {
	benchScenario(b, tva.SchemeTVA, tva.AttackRequestFlood, 100)
}

func BenchmarkFig9_RequestFlood_SIFF(b *testing.B) {
	benchScenario(b, tva.SchemeSIFF, tva.AttackRequestFlood, 100)
}

func BenchmarkFig10_AuthorizedFlood_TVA(b *testing.B) {
	benchScenario(b, tva.SchemeTVA, tva.AttackAuthorizedFlood, 100)
}

func BenchmarkFig10_AuthorizedFlood_SIFF(b *testing.B) {
	benchScenario(b, tva.SchemeSIFF, tva.AttackAuthorizedFlood, 100)
}

func BenchmarkFig11_ImpreciseAuth_TVA(b *testing.B) {
	var res *tva.SimResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res = tva.RunSim(tva.SimConfig{
			Scheme:       tva.SchemeTVA,
			Attack:       tva.AttackImpreciseAuth,
			NumAttackers: 100,
			AttackGroups: 1,
			AttackStart:  5 * time.Second,
			Duration:     20 * time.Second,
			Seed:         1,
		})
	}
	b.ReportMetric(res.CompletionFraction(), "completion")
	b.ReportMetric(res.MaxTransferTime(), "max-xfer-sec")
}

func BenchmarkFig11_ImpreciseAuth_SIFF(b *testing.B) {
	var res *tva.SimResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res = tva.RunSim(tva.SimConfig{
			Scheme:       tva.SchemeSIFF,
			Attack:       tva.AttackImpreciseAuth,
			NumAttackers: 100,
			AttackGroups: 1,
			AttackStart:  5 * time.Second,
			Duration:     20 * time.Second,
			Seed:         1,
		})
	}
	b.ReportMetric(res.CompletionFraction(), "completion")
	b.ReportMetric(res.MaxTransferTime(), "max-xfer-sec")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblation_Hashers compares the paper's crypto construction
// against the fast simulation hash on the capability validation path.
func BenchmarkAblation_Hashers(b *testing.B) {
	for _, suite := range []tva.Suite{tva.CryptoSuite, tva.FastSuite} {
		b.Run(suite.Name, func(b *testing.B) {
			a := tva.NewAuthority(suite, 0)
			now := tva.Time(1e9)
			pre := a.PreCap(1, 2, now)
			cap := suite.MakeCap(pre, 32, 10)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !a.ValidateCap(1, 2, cap, 32, 10, now) {
					b.Fatal("validation failed")
				}
			}
		})
	}
}

// BenchmarkAblation_NonceCache quantifies §3.7's capability caching:
// the per-packet cost and wire overhead of nonce-only packets versus
// always attaching the full capability list.
func BenchmarkAblation_NonceCache(b *testing.B) {
	cases := []struct {
		name string
		kind overlay.PacketKind
	}{
		{"nonce-only(cached)", overlay.KindRegularWithEntry},
		{"full-caps(uncached)", overlay.KindRegularNoEntry},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			w := overlay.NewWorkload(c.kind, capability.Crypto)
			now := tvatime.WallClock{}.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.ForwardOne(now)
			}
		})
	}
}

// BenchmarkAblation_FairQueue contrasts TVA's per-destination fair
// queuing with SIFF's single priority FIFO under the colluder attack:
// the fair queue is what keeps the victim's completion near 1.
func BenchmarkAblation_FairQueue(b *testing.B) {
	b.Run("per-dest-fq", func(b *testing.B) {
		benchScenario(b, tva.SchemeTVA, tva.AttackAuthorizedFlood, 100)
	})
	b.Run("single-fifo", func(b *testing.B) {
		benchScenario(b, tva.SchemeSIFF, tva.AttackAuthorizedFlood, 100)
	})
}

// BenchmarkAblation_CacheBound measures the bounded flow cache under
// adversarial flow churn at its bound versus comfortably oversized:
// the fixed-memory design keeps admission O(log n) with no growth.
func BenchmarkAblation_CacheBound(b *testing.B) {
	for _, size := range []int{256, 1 << 16} {
		name := "bounded-256"
		if size > 256 {
			name = "oversized-64k"
		}
		b.Run(name, func(b *testing.B) {
			c := flowcache.New(size)
			now := tvatime.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := flowcache.Key{Src: tva.Addr(i), Dst: 1}
				// Minimum-rate flows: ttl expires almost immediately,
				// so the bounded cache recycles its slots.
				c.Create(key, 1, 1, 1<<20, 1, now.Add(tvatime.Second), 40, now)
				now = now.Add(40 * tvatime.Microsecond)
			}
			if c.Len() > size {
				b.Fatalf("cache exceeded bound: %d > %d", c.Len(), size)
			}
		})
	}
}
