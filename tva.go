// Package tva is a from-scratch reproduction of the Traffic Validation
// Architecture from "A DoS-limiting Network Architecture" (Yang,
// Wetherall, Anderson — SIGCOMM 2005): a capability-based network
// architecture in which destinations authorize senders, routers
// preferentially forward authorized traffic within fine-grained
// byte/time budgets, and floods of unauthorized, request, or even
// authorized attack traffic have strictly limited impact.
//
// The package is a facade over the implementation:
//
//   - capabilities: unforgeable pre-capabilities and fine-grained
//     capabilities with rotating router secrets (paper §3.4–3.5);
//   - the router data path: Fig. 6 processing, bounded per-flow state
//     (§3.6), and the three-class link scheduler of Fig. 2;
//   - the host shim: request bootstrap, capability caching with flow
//     nonces, renewal, demotion repair, and destination policies
//     (§3.3, §4.2);
//   - a packet-level discrete-event simulator, Reno-style TCP, and the
//     SIFF / Pushback / legacy-Internet baselines used to reproduce
//     the paper's Figs. 8–11;
//   - a userspace UDP overlay (router and host proxy) reproducing the
//     deployment story of §6/§8 and the Table 1 / Fig. 12 forwarding
//     measurements.
//
// Quick start (simulation):
//
//	res := tva.RunSim(tva.SimConfig{
//		Scheme:       tva.SchemeTVA,
//		Attack:       tva.AttackLegacyFlood,
//		NumAttackers: 100,
//	})
//	fmt.Println(res.CompletionFraction(), res.AvgTransferTime())
//
// Quick start (real sockets): see examples/overlaynet.
package tva

import (
	"math/rand"

	"tva/internal/capability"
	"tva/internal/core"
	"tva/internal/exp"
	"tva/internal/overlay"
	"tva/internal/packet"
	"tva/internal/tvatime"
)

// Addr is a 32-bit TVA network address.
type Addr = packet.Addr

// AddrFrom builds an Addr from four octets.
func AddrFrom(a, b, c, d byte) Addr { return packet.AddrFrom(a, b, c, d) }

// Packet is a TVA packet (outer header + capability shim + payload).
type Packet = packet.Packet

// CapHdr is the capability shim header of Fig. 5.
type CapHdr = packet.CapHdr

// Grant is a destination's authorization of N bytes over T seconds.
type Grant = packet.Grant

// Proto identifies the payload above the capability shim.
type Proto = packet.Proto

// Payload protocols.
const (
	ProtoRaw = packet.ProtoRaw
	ProtoTCP = packet.ProtoTCP
)

// Time and Duration alias the shared clock representation.
type (
	Time     = tvatime.Time
	Duration = tvatime.Duration
)

// Clock supplies time to protocol components.
type Clock = tvatime.Clock

// Suite selects the capability hash construction.
type Suite = capability.Suite

// Hash suites: CryptoSuite is the paper's AES-CBC-MAC + SHA-1
// construction; FastSuite is a keyed-FNV variant for large
// simulations.
var (
	CryptoSuite = capability.Crypto
	FastSuite   = capability.Fast
)

// Authority mints and validates one router's capabilities.
type Authority = capability.Authority

// NewAuthority returns a capability authority with the given secret
// rotation period (0 selects the paper's 128 s).
func NewAuthority(suite Suite, secretPeriod Duration) *Authority {
	return capability.NewAuthority(suite, secretPeriod)
}

// Router is the TVA capability router engine (Fig. 6).
type Router = core.Router

// RouterConfig configures a Router.
type RouterConfig = core.RouterConfig

// NewRouter builds a capability router.
func NewRouter(cfg RouterConfig) *Router { return core.NewRouter(cfg) }

// Shim is the host-side capability layer (§4.2).
type Shim = core.Shim

// ShimConfig configures a Shim.
type ShimConfig = core.ShimConfig

// NewShim builds a host shim. The rng supplies flow nonces.
func NewShim(addr Addr, policy Policy, clock Clock, rng *rand.Rand, cfg ShimConfig) *Shim {
	return core.NewShim(addr, policy, clock, rng, cfg)
}

// Destination policies (§3.3).
type (
	// Policy authorizes inbound senders.
	Policy = core.Policy
	// ClientPolicy accepts only responses to its own requests.
	ClientPolicy = core.ClientPolicy
	// ServerPolicy grants a default allowance and blacklists reported
	// misbehavers.
	ServerPolicy = core.ServerPolicy
	// AllowAllPolicy grants everyone the maximum authorization.
	AllowAllPolicy = core.AllowAllPolicy
	// RefuseAllPolicy refuses everyone.
	RefuseAllPolicy = core.RefuseAllPolicy
)

// NewClientPolicy returns a ClientPolicy with defaults.
func NewClientPolicy() *ClientPolicy { return core.NewClientPolicy() }

// NewServerPolicy returns a ServerPolicy with defaults.
func NewServerPolicy() *ServerPolicy { return core.NewServerPolicy() }

// --- Simulation experiments (paper §5) ---

// SimConfig parameterizes one simulated dumbbell experiment.
type SimConfig = exp.Config

// SimResult carries one run's transfer records and metrics.
type SimResult = exp.Result

// TransferRecord is one user transfer's outcome.
type TransferRecord = exp.TransferRecord

// SweepPoint is one attacker-count point of Figs. 8–10.
type SweepPoint = exp.SweepPoint

// Scheme selects the DoS defense under test.
type Scheme = exp.Scheme

// Schemes compared in the paper's evaluation.
const (
	SchemeInternet = exp.SchemeInternet
	SchemeTVA      = exp.SchemeTVA
	SchemeSIFF     = exp.SchemeSIFF
	SchemePushback = exp.SchemePushback
)

// Attack selects the attacker workload.
type Attack = exp.Attack

// Attacks of §5.1–§5.4.
const (
	AttackNone            = exp.AttackNone
	AttackLegacyFlood     = exp.AttackLegacyFlood
	AttackRequestFlood    = exp.AttackRequestFlood
	AttackAuthorizedFlood = exp.AttackAuthorizedFlood
	AttackImpreciseAuth   = exp.AttackImpreciseAuth
)

// Deployment selects which routers are upgraded (§8 incremental
// deployment).
type Deployment = exp.Deployment

// Deployment levels.
const (
	DeployFull           = exp.DeployFull
	DeployBottleneckOnly = exp.DeployBottleneckOnly
	DeployNone           = exp.DeployNone
)

// RunSim executes one simulation run.
func RunSim(cfg SimConfig) *SimResult { return exp.Run(cfg) }

// SweepSim runs cfg at each attacker count, collecting the paper's two
// metrics.
func SweepSim(cfg SimConfig, attackerCounts []int) []SweepPoint {
	return exp.Sweep(cfg, attackerCounts)
}

// RunSims executes independent simulation runs across worker
// goroutines, returning results in input order. workers <= 0 uses
// GOMAXPROCS. Each run's outcome depends only on its configuration,
// so the results are identical to running the configs serially.
func RunSims(cfgs []SimConfig, workers int) []*SimResult {
	return exp.RunMany(cfgs, workers)
}

// SweepSimParallel is SweepSim fanned across workers; it returns the
// same points in the same order.
func SweepSimParallel(cfg SimConfig, attackerCounts []int, workers int) []SweepPoint {
	return exp.SweepParallel(cfg, attackerCounts, workers)
}

// SimSweepSpec enumerates a (scheme, attack, attacker-count, seed)
// grid over a base configuration for parallel execution.
type SimSweepSpec = exp.SweepSpec

// Well-known simulation addresses.
var (
	SimDestAddr     = exp.DestAddr
	SimColluderAddr = exp.ColluderAddr
)

// --- Userspace overlay (paper §6/§8) ---

// OverlayRouter is a userspace TVA router over UDP.
type OverlayRouter = overlay.Router

// OverlayRouterConfig configures an OverlayRouter.
type OverlayRouterConfig = overlay.RouterConfig

// NewOverlayRouter binds and starts a userspace router.
func NewOverlayRouter(cfg OverlayRouterConfig) (*OverlayRouter, error) {
	return overlay.NewRouter(cfg)
}

// OverlayHost is a capability-protected datagram endpoint over UDP.
type OverlayHost = overlay.Host

// OverlayHostConfig configures an OverlayHost.
type OverlayHostConfig = overlay.HostConfig

// OverlayMessage is a datagram delivered to an OverlayHost.
type OverlayMessage = overlay.Message

// NewOverlayHost binds and starts a host proxy.
func NewOverlayHost(cfg OverlayHostConfig) (*OverlayHost, error) {
	return overlay.NewHost(cfg)
}
